//! Reliability integration tests: Messenger semantics over an unreliable
//! substrate, and determinism of whole-system runs.

use bladerunner_repro::config::SystemConfig;
use bladerunner_repro::sim::SystemSim;
use simkit::time::{SimDuration, SimTime};

#[test]
fn messenger_exactly_once_under_repeated_drops() {
    let mut s = SystemSim::new(SystemConfig::small(), 31);
    let alice = s.create_user_device("alice", "en");
    let bob = s.create_user_device("bob", "en");
    let thread = s.was_mut().create_thread(&[alice, bob]);
    s.subscribe_mailbox(SimTime::ZERO, bob);
    // 20 messages over 5 minutes; bob drops every 45 seconds.
    for i in 0..20u64 {
        s.send_message(
            SimTime::from_secs(5 + i * 15),
            alice,
            thread,
            &format!("m{i}"),
        );
    }
    for k in 0..6u64 {
        s.schedule_device_drop(SimTime::from_secs(40 + k * 45), bob);
    }
    s.run_until(SimTime::from_secs(600));
    assert_eq!(
        s.metrics().deliveries.get(),
        20,
        "every message delivered exactly once across 6 drops"
    );
}

#[test]
fn messenger_survives_lossy_last_mile() {
    // Even when a third of downstream frames vanish, mailbox sequencing
    // plus device-side gap detection plus BRASS backfill recovers every
    // message (eventually, via subsequent event-triggered backfills).
    let mut config = SystemConfig::small();
    config.last_mile_drop = 0.3;
    let mut s = SystemSim::new(config, 33);
    let alice = s.create_user_device("alice", "en");
    let bob = s.create_user_device("bob", "en");
    let thread = s.was_mut().create_thread(&[alice, bob]);
    s.subscribe_mailbox(SimTime::ZERO, bob);
    for i in 0..15u64 {
        s.send_message(
            SimTime::from_secs(5 + i * 10),
            alice,
            thread,
            &format!("m{i}"),
        );
    }
    // A final drop-reconnect forces a backfill that sweeps up any frames
    // the lossy link ate.
    s.schedule_device_drop(SimTime::from_secs(170), bob);
    s.run_until(SimTime::from_secs(400));
    let delivered = s.metrics().deliveries.get();
    assert!(
        (15..=16).contains(&delivered),
        "all messages recovered (one may replay across the final \
         reconnect): {delivered}"
    );
}

#[test]
fn lvc_tolerates_loss_without_recovery_machinery() {
    // Best-effort applications simply lose dropped frames — no retries, no
    // stalls, later comments still arrive.
    let mut config = SystemConfig::small();
    config.last_mile_drop = 0.5;
    let mut s = SystemSim::new(config, 34);
    let video = s.was_mut().create_video("v");
    let viewer = s.create_user_device("viewer", "en");
    let poster = s.create_user_device("poster", "en");
    s.subscribe_lvc(SimTime::ZERO, viewer, video);
    for i in 0..30u64 {
        s.post_comment(
            SimTime::from_secs(3 + i * 4),
            poster,
            video,
            &format!("steady stream of commentary number {i}"),
        );
    }
    s.run_until(SimTime::from_secs(240));
    let delivered = s.metrics().deliveries.get();
    let lost = s.metrics().frames_lost.get();
    assert!(lost > 0, "the lossy link ate frames");
    assert!(delivered > 5, "plenty still arrived: {delivered}");
    assert!(delivered < 30, "and some were genuinely lost: {delivered}");
}

#[test]
fn whole_system_runs_are_deterministic() {
    let run = |seed: u64| {
        let mut s = SystemSim::new(SystemConfig::small(), seed);
        let video = s.was_mut().create_video("v");
        let viewer = s.create_user_device("viewer", "en");
        let poster = s.create_user_device("poster", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        for i in 0..25u64 {
            s.post_comment(
                SimTime::from_millis(2_000 + i * 700),
                poster,
                video,
                &format!("deterministic comment number {i}"),
            );
        }
        s.schedule_device_drop(SimTime::from_secs(9), viewer);
        s.schedule_brass_upgrade(SimTime::from_secs(14), 0, SimDuration::from_secs(10));
        s.run_until(SimTime::from_secs(120));
        (
            s.metrics().deliveries.get(),
            s.metrics().publications.get(),
            s.metrics().subscriptions.get(),
            s.total_decisions(),
            s.total_proxy_reconnects(),
            format!("{:.3}", s.metrics().per_app["lvc"].total.mean()),
        )
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a, b, "same seed, bit-identical metrics");
    let c = run(78);
    assert_ne!(a, c, "different seed, different trajectory");
}

#[test]
fn pylon_straggler_replicas_still_deliver() {
    // Subscribe while one replica of the topic is down: the straggler path
    // (late forwards + repair) still gets events to the BRASS.
    let mut s = SystemSim::new(SystemConfig::small(), 35);
    let video = s.was_mut().create_video("v");
    let viewer = s.create_user_device("viewer", "en");
    let poster = s.create_user_device("poster", "en");
    // Take down two KV nodes around subscription time (quorum of 3 still
    // possible for most topics; some writes land on stragglers).
    s.schedule_pylon_outage(SimTime::ZERO, 0, SimDuration::from_secs(15));
    s.subscribe_lvc(SimTime::from_secs(2), viewer, video);
    s.run_until(SimTime::from_secs(20));
    s.post_comment(
        SimTime::from_secs(25),
        poster,
        video,
        "through the patched replica set",
    );
    s.run_until(SimTime::from_secs(60));
    assert_eq!(s.metrics().deliveries.get(), 1);
}
