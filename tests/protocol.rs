//! Protocol-level integration: the BURST state machines of all three roles
//! (client, proxy, server) driven together across a scripted multi-hop
//! exchange, including wire encoding on every hop.

use burst::codec::{encode_to_vec, Decoder};
use burst::frame::{Delta, Frame, StreamId, TerminateReason};
use burst::json::Json;
use burst::stream::{ClientAction, ClientStream, ProxyStreamTable, ServerStream, StreamState};

/// Pushes a frame through a wire hop: encode, then decode on the far side.
fn wire(frame: &Frame) -> Frame {
    let bytes = encode_to_vec(frame);
    let mut dec = Decoder::new();
    dec.feed(&bytes);
    dec.next_frame().unwrap().expect("one complete frame")
}

#[test]
fn subscribe_rewrite_deliver_cancel_across_hops() {
    let header = Json::obj([
        ("viewer", Json::from(9u64)),
        ("topic", Json::from("/LVC/42")),
        ("app", Json::from("lvc")),
    ]);
    let mut client = ClientStream::new(StreamId(1), header, b"body".to_vec());
    let mut pop = ProxyStreamTable::new();
    let mut proxy = ProxyStreamTable::new();

    // Subscribe travels client → POP → proxy → BRASS, encoded on each hop.
    let sub = wire(&client.subscribe_request());
    let Frame::Subscribe { sid, header, body } = sub else {
        panic!("expected subscribe");
    };
    pop.on_subscribe(9, sid, header.clone(), body.clone(), Some(1), 0);
    let f = wire(&Frame::Subscribe {
        sid,
        header: header.clone(),
        body: body.clone(),
    });
    let Frame::Subscribe { sid, header, body } = f else {
        panic!("expected subscribe");
    };
    proxy.on_subscribe(9, sid, header.clone(), body, Some(7), 0);

    // BRASS accepts, patches sticky routing, and pushes two updates.
    let mut server = ServerStream::accept(sid, header, false);
    let rewrite = server.rewrite(Json::obj([("brass_host", Json::from(7u64))]));
    let batch = vec![
        rewrite,
        server.push(b"u0".to_vec()),
        server.push(b"u1".to_vec()),
    ];
    let response = wire(&Frame::Response { sid, batch });

    // The response passes back through both intermediaries, which observe
    // the rewrite, then reaches the client.
    let Frame::Response { sid, batch } = response else {
        panic!("expected response");
    };
    proxy.on_response(9, sid, &batch, 1);
    pop.on_response(9, sid, &batch, 1);
    assert_eq!(
        proxy
            .get(9, sid)
            .unwrap()
            .header
            .unpack()
            .get("brass_host")
            .and_then(Json::as_u64),
        Some(7),
        "proxy state tracks the rewrite"
    );
    let actions = client.on_batch(&batch);
    assert_eq!(
        actions,
        vec![
            ClientAction::HeaderRewritten,
            ClientAction::Deliver(b"u0".to_vec().into()),
            ClientAction::Deliver(b"u1".to_vec().into()),
        ]
    );
    assert_eq!(client.state(), StreamState::Active);

    // Cancel: state is garbage-collected on every hop.
    let cancel = wire(&Frame::Cancel { sid });
    let Frame::Cancel { sid } = cancel else {
        panic!("expected cancel")
    };
    pop.on_cancel(9, sid);
    proxy.on_cancel(9, sid);
    assert!(pop.is_empty());
    assert!(proxy.is_empty());
}

#[test]
fn failover_resumes_from_rewritten_state() {
    // A server records progress via rewrites; after it dies, the proxy
    // rebuilds the subscribe from stored state and a NEW server resumes
    // sequence numbering where the old one stopped.
    let header = Json::obj([
        ("viewer", Json::from(9u64)),
        ("topic", Json::from("/Msgr/9")),
    ]);
    let mut client = ClientStream::new(StreamId(5), header.clone(), vec![]);
    let mut proxy = ProxyStreamTable::new();
    proxy.on_subscribe(9, StreamId(5), header.clone(), vec![], Some(1), 0);

    let mut server_a = ServerStream::accept(StreamId(5), header, true);
    let batch = vec![
        server_a.push(b"m0".to_vec()),
        server_a.push(b"m1".to_vec()),
        server_a.rewrite_progress(), // installs last_seq = 1
    ];
    proxy.on_response(9, StreamId(5), &batch, 1);
    client.on_batch(&batch);
    assert_eq!(client.delivered(), 2);

    // Host 1 dies; the proxy repairs onto host 2 using stored state.
    let affected = proxy.streams_via(1);
    assert_eq!(affected, vec![(9, StreamId(5))]);
    let resub = proxy.rebuild_subscribe(9, StreamId(5), 2).unwrap();
    let Frame::Subscribe { sid, header, .. } = wire(&resub) else {
        panic!("expected subscribe");
    };
    // Client learns of the repair (degraded → recovered resyncs its seq).
    client.on_batch(&[Delta::FlowStatus(burst::frame::FlowStatus::Degraded)]);
    client.on_batch(&[Delta::FlowStatus(burst::frame::FlowStatus::Recovered)]);

    let mut server_b = ServerStream::accept(sid, header, true);
    assert_eq!(
        server_b.next_seq(),
        2,
        "resumes after the rewritten last_seq"
    );
    let batch = vec![server_b.push(b"m2".to_vec())];
    let actions = client.on_batch(&batch);
    assert_eq!(actions, vec![ClientAction::Deliver(b"m2".to_vec().into())]);
    assert_eq!(client.gaps(), 0, "no gap, no replay");
}

#[test]
fn redirect_flow() {
    let header = Json::obj([
        ("viewer", Json::from(1u64)),
        ("topic", Json::from("/LVC/1")),
    ]);
    let mut client = ClientStream::new(StreamId(2), header.clone(), vec![]);
    let mut server = ServerStream::accept(StreamId(2), header, false);
    // The BRASS wants this stream elsewhere: rewrite routing info, then
    // terminate with Redirect.
    let batch = vec![
        server.rewrite(Json::obj([("brass_host", Json::from(99u64))])),
        Delta::Terminate(TerminateReason::Redirect),
    ];
    let actions = client.on_batch(&batch);
    assert!(actions.contains(&ClientAction::Terminated(TerminateReason::Redirect)));
    // The client retries; its subscribe carries the new routing hint.
    let f = client.resubscribe_request();
    let Frame::Subscribe { header, .. } = f else {
        panic!("expected subscribe")
    };
    assert_eq!(header.get("brass_host").and_then(Json::as_u64), Some(99));
}

#[test]
fn ack_retention_replay_cycle() {
    let header = Json::obj([
        ("viewer", Json::from(1u64)),
        ("topic", Json::from("/Msgr/1")),
    ]);
    let mut client = ClientStream::new(StreamId(3), header.clone(), vec![]);
    let mut server = ServerStream::accept(StreamId(3), header, true);
    let batch = vec![
        server.push(b"a".to_vec()),
        server.push(b"b".to_vec()),
        server.push(b"c".to_vec()),
    ];
    client.on_batch(&batch);
    // The client acks; the wire hop preserves it; retention shrinks.
    let ack = wire(&client.ack_request());
    let Frame::Ack { seq, .. } = ack else {
        panic!("expected ack")
    };
    server.on_ack(seq);
    assert!(server.unacked().is_empty(), "everything acked");
    // More updates, no ack: a reconnect replays exactly those.
    server.push(b"d".to_vec());
    let replay = server.replay_unacked();
    assert_eq!(replay, vec![Delta::update(3, b"d".to_vec())]);
    let actions = client.on_batch(&replay);
    assert_eq!(actions, vec![ClientAction::Deliver(b"d".to_vec().into())]);
}

#[test]
fn flow_control_end_to_end_over_wire() {
    use burst::mux::{CreditManager, MuxSender};
    let mut sender = MuxSender::new(200);
    let mut receiver = CreditManager::new(200);
    for i in 0..10u64 {
        sender.enqueue(Frame::Response {
            sid: StreamId(1),
            batch: vec![Delta::update(i, vec![0u8; 80])],
        });
    }
    let mut received = 0;
    for _round in 0..50 {
        let frames = sender.poll_sendable();
        if frames.is_empty() && sender.queued(StreamId(1)) == 0 {
            break;
        }
        for f in frames {
            let delivered = wire(&f);
            if let Some(grant) = receiver.on_received(StreamId(1), &delivered) {
                let granted = wire(&grant);
                if let Frame::Credit { sid, bytes } = granted {
                    sender.on_credit(sid, bytes);
                }
            }
            received += 1;
        }
    }
    assert_eq!(received, 10, "credit loop drains the queue over the wire");
}
