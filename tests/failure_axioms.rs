//! Integration tests for §4's three failure-handling axioms, exercised
//! through the full system.

use bladerunner_repro::config::SystemConfig;
use bladerunner_repro::scenario::LiveVideo;
use bladerunner_repro::sim::SystemSim;
use simkit::time::{SimDuration, SimTime};

fn sim(seed: u64) -> SystemSim {
    SystemSim::new(SystemConfig::small(), seed)
}

#[test]
fn axiom1_device_drop_is_detected_and_propagated() {
    // If a client device loses connectivity, the POP detects it and informs
    // the BRASSes servicing its streams (via proxy cancels).
    let mut s = sim(1);
    let video = s.was_mut().create_video("v");
    let viewer = s.create_user_device("viewer", "en");
    let poster = s.create_user_device("poster", "en");
    s.subscribe_lvc(SimTime::ZERO, viewer, video);
    s.run_until(SimTime::from_secs(10));
    s.schedule_device_drop(SimTime::from_secs(11), viewer);
    // Run only briefly: comments posted while dropped find no stream.
    s.post_comment(
        SimTime::from_secs(12),
        poster,
        video,
        "into the dead zone it goes",
    );
    s.run_until(SimTime::from_secs(12));
    assert_eq!(s.metrics().connection_drops.get(), 1);
    // After reconnect (2 s) the stream recovers and deliveries resume.
    s.post_comment(
        SimTime::from_secs(30),
        poster,
        video,
        "back in the land of living",
    );
    s.run_until(SimTime::from_secs(90));
    assert!(s.metrics().deliveries.get() >= 1, "post-reconnect delivery");
}

#[test]
fn axiom2_proxy_repairs_streams_after_brass_failure() {
    let mut s = sim(2);
    let lv = LiveVideo::setup(&mut s, 6, 2, SimTime::ZERO);
    s.run_until(SimTime::from_secs(10));
    // Kill every host once, staggered; each wave forces proxy repairs.
    for h in 0..4usize {
        s.schedule_brass_upgrade(
            SimTime::from_secs(15 + h as u64 * 5),
            h,
            SimDuration::from_secs(60),
        );
    }
    s.run_until(SimTime::from_secs(60));
    assert!(
        s.total_proxy_reconnects() >= 6,
        "every stream repaired at least once: {}",
        s.total_proxy_reconnects()
    );
    // Deliveries continue after the wave.
    s.post_comment(
        SimTime::from_secs(100),
        lv.posters[0],
        lv.video,
        "still streaming after the upgrade wave",
    );
    s.run_until(SimTime::from_secs(140));
    assert!(s.metrics().deliveries.get() >= 6);
}

#[test]
fn axiom3_messenger_state_recovers_via_rewrites() {
    // Reliable apps persist progress in the stream (header rewrites); a
    // BRASS failure plus proxy repair resumes without replaying.
    let mut s = sim(3);
    let alice = s.create_user_device("alice", "en");
    let bob = s.create_user_device("bob", "en");
    let thread = s.was_mut().create_thread(&[alice, bob]);
    s.subscribe_mailbox(SimTime::ZERO, bob);
    for i in 0..4u64 {
        s.send_message(
            SimTime::from_secs(5 + i * 5),
            alice,
            thread,
            &format!("pre {i}"),
        );
    }
    s.run_until(SimTime::from_secs(40));
    let delivered_before = s.metrics().deliveries.get();
    assert_eq!(delivered_before, 4);
    // Kill all hosts briefly: bob's stream is repaired with the rewritten
    // header carrying msgr_seq.
    for h in 0..4usize {
        s.schedule_brass_upgrade(SimTime::from_secs(41), h, SimDuration::from_secs(10));
    }
    for i in 0..3u64 {
        s.send_message(
            SimTime::from_secs(70 + i * 5),
            alice,
            thread,
            &format!("post {i}"),
        );
    }
    s.run_until(SimTime::from_secs(160));
    assert_eq!(
        s.metrics().deliveries.get(),
        7,
        "exactly the three post-failure messages more — no replay, no loss"
    );
}

#[test]
fn pylon_quorum_loss_is_cp_for_subscribes_ap_for_delivery() {
    let mut s = sim(4);
    let video = s.was_mut().create_video("v");
    let video2 = s.was_mut().create_video("v2");
    let established = s.create_user_device("established", "en");
    let late = s.create_user_device("late", "en");
    let poster = s.create_user_device("poster", "en");
    // One viewer subscribes before the outage.
    s.subscribe_lvc(SimTime::ZERO, established, video);
    s.run_until(SimTime::from_secs(5));
    // Partial subscriber-KV outage: probe for a node set that breaks
    // quorum for video2's fresh topic while leaving at least one replica
    // of video1's topic alive (so AP delivery can continue there).
    let topic2 = pylon::Topic::live_video_comments(video2);
    let nodes = s.pylon().config().kv_nodes as u64;
    let mut kill = Vec::new();
    for n in 0..nodes {
        s.pylon_mut().node_down(n);
        kill.push(n);
        if !s.pylon_mut().quorum_available(&topic2) {
            break;
        }
    }
    assert!(
        !s.pylon_mut().quorum_available(&topic2),
        "probe broke quorum"
    );
    for &n in &kill {
        s.pylon_mut().node_up(n);
    }
    for &n in &kill {
        s.schedule_pylon_outage(SimTime::from_secs(6), n, SimDuration::from_secs(40));
    }
    // The late viewer subscribes to a *fresh* topic during the outage, so
    // a new CP quorum write is required (same-topic subscribes would be
    // deduplicated by the host subscription manager): it fails and
    // retries. The established stream keeps receiving (AP).
    s.subscribe_lvc(SimTime::from_secs(10), late, video2);
    s.post_comment(
        SimTime::from_secs(15),
        poster,
        video,
        "published during the outage",
    );
    s.post_comment(
        SimTime::from_secs(15),
        poster,
        video2,
        "unheard during the outage here",
    );
    s.run_until(SimTime::from_secs(40));
    assert!(
        s.metrics().quorum_failures.get() >= 1,
        "CP subscribe failed"
    );
    assert_eq!(
        s.device(established).unwrap().delivered(),
        1,
        "AP delivery continued for the established stream"
    );
    assert_eq!(s.device(late).unwrap().delivered(), 0);
    // After the outage, the (backed-off) retry lands and the late viewer
    // receives: the last retry fires ~74s in, so post after it.
    s.post_comment(
        SimTime::from_secs(90),
        poster,
        video2,
        "published after the recovery",
    );
    s.run_until(SimTime::from_secs(150));
    assert_eq!(s.device(late).unwrap().delivered(), 1, "retry succeeded");
}

#[test]
fn best_effort_drops_are_not_retransmitted_for_lvc() {
    // LVC tolerates loss: a dropped last-mile frame is gone, and nothing
    // crashes or retries (best-effort by design).
    let mut config = SystemConfig::small();
    config.last_mile_drop = 1.0; // every downstream frame is lost
    let mut s = SystemSim::new(config, 5);
    let video = s.was_mut().create_video("v");
    let viewer = s.create_user_device("viewer", "en");
    let poster = s.create_user_device("poster", "en");
    s.subscribe_lvc(SimTime::ZERO, viewer, video);
    s.post_comment(
        SimTime::from_secs(5),
        poster,
        video,
        "lost to the void forever",
    );
    s.run_until(SimTime::from_secs(40));
    assert_eq!(s.metrics().deliveries.get(), 0);
    assert!(s.metrics().frames_lost.get() >= 1);
}

#[test]
fn upgrades_preserve_sticky_routing_benefits() {
    // After a repair, the stream keeps working and the device's header
    // carries the (new) serving host.
    let mut s = sim(6);
    let video = s.was_mut().create_video("v");
    let viewer = s.create_user_device("viewer", "en");
    s.subscribe_lvc(SimTime::ZERO, viewer, video);
    s.run_until(SimTime::from_secs(10));
    let before = s
        .device(viewer)
        .unwrap()
        .stream(burst::frame::StreamId(1))
        .unwrap()
        .header()
        .get("brass_host")
        .cloned();
    assert!(before.is_some());
    for h in 0..4usize {
        s.schedule_brass_upgrade(
            SimTime::from_secs(12 + h as u64),
            h,
            SimDuration::from_secs(20),
        );
    }
    s.run_until(SimTime::from_secs(60));
    let after = s
        .device(viewer)
        .unwrap()
        .stream(burst::frame::StreamId(1))
        .unwrap()
        .header()
        .get("brass_host")
        .cloned();
    assert!(after.is_some(), "repaired stream re-patched its host");
}

#[test]
fn redirect_migrates_stream_transparently() {
    // §3.5 "Redirects": the serving BRASS patches new routing info into the
    // header and terminates with Redirect; the device retries and lands on
    // the target host — delivery continues with zero device-side logic.
    let mut s = sim(7);
    let video = s.was_mut().create_video("v");
    let viewer = s.create_user_device("viewer", "en");
    let poster = s.create_user_device("poster", "en");
    s.subscribe_lvc(SimTime::ZERO, viewer, video);
    s.run_until(SimTime::from_secs(5));
    // Find the serving host from the sticky rewrite the device received.
    let serving = s
        .device(viewer)
        .unwrap()
        .stream(burst::frame::StreamId(1))
        .unwrap()
        .header()
        .get("brass_host")
        .and_then(burst::json::Json::as_u64)
        .expect("sticky host patched") as usize;
    let target = (serving + 1) % 4;
    s.schedule_brass_redirect(
        SimTime::from_secs(6),
        serving,
        viewer,
        burst::frame::StreamId(1),
        target,
    );
    s.run_until(SimTime::from_secs(20));
    // The device's header now points at the target host...
    let now_serving = s
        .device(viewer)
        .unwrap()
        .stream(burst::frame::StreamId(1))
        .unwrap()
        .header()
        .get("brass_host")
        .and_then(burst::json::Json::as_u64)
        .unwrap() as usize;
    assert_eq!(
        now_serving, target,
        "header rewritten to the redirect target"
    );
    // ...and delivery flows through it.
    s.post_comment(
        SimTime::from_secs(25),
        poster,
        video,
        "after the redirect it arrives",
    );
    s.run_until(SimTime::from_secs(60));
    assert_eq!(s.metrics().deliveries.get(), 1);
}
