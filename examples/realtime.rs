//! Real-time driver: the same sans-io components against the wall clock.
//!
//! Everything else in this repository runs under simulated time; this
//! example runs a WAS, Pylon and a BRASS host on a backend thread with
//! real timers (the paper's single-threaded event-loop shape) and streams
//! a comment to a "device" over channels.
//!
//! Run: `cargo run --example realtime`

use std::time::{Duration, Instant};

use bladerunner_repro::rt::RtSystem;

fn main() {
    let (rt, (video, alice)) = RtSystem::start(|was| {
        let video = was.create_video("realtime demo");
        let alice = was.create_user("alice", "en");
        (video, alice)
    });

    // Device 2 subscribes on stream 1.
    rt.subscribe_lvc(2, 1, video);
    std::thread::sleep(Duration::from_millis(50));

    let started = Instant::now();
    rt.post_comment(alice, video, "hello from real time");
    println!("comment posted; waiting for the 2s LVC push timer...");

    let delivery = rt
        .recv_delivery(Duration::from_secs(10))
        .expect("delivery within the push period");
    let elapsed = started.elapsed();
    println!(
        "device {} received on stream {} after {:.2}s: {}",
        delivery.device,
        delivery.sid,
        elapsed.as_secs_f64(),
        String::from_utf8_lossy(&delivery.payload)
    );
    assert_eq!(delivery.device, 2);
    assert!(
        elapsed >= Duration::from_millis(500) && elapsed < Duration::from_secs(5),
        "the ranked-buffer pop runs on the real 2s cadence"
    );
    println!("\nrealtime OK");
}
