//! ActiveStatus: one device subscribe fanning into many Pylon
//! subscriptions, with TTL'd presence and periodic batching (§3.4).
//!
//! Run: `cargo run --example active_status`

use bladerunner_repro::config::SystemConfig;
use bladerunner_repro::sim::SystemSim;
use simkit::time::{SimDuration, SimTime};

fn main() {
    let mut sim = SystemSim::new(SystemConfig::small(), 21);

    // A viewer with five friends.
    let viewer = sim.create_user_device("viewer", "en");
    let friends: Vec<u64> = (0..5)
        .map(|i| {
            let f = sim.create_user_device(&format!("friend{i}"), "en");
            sim.was_mut().add_friend(viewer, f, i);
            f
        })
        .collect();

    // One subscribe; the BRASS fetches the friend list from the WAS and
    // subscribes to /Status/f-uid for each friend.
    sim.subscribe_active_status(SimTime::ZERO, viewer);

    // Two friends come online and keep pinging every 30 s; the others stay
    // silent.
    for t in (5..180).step_by(30) {
        sim.set_online(SimTime::from_secs(t), friends[0]);
        sim.set_online(SimTime::from_secs(t + 2), friends[1]);
    }
    // A third friend appears briefly, then goes dark (TTL expiry).
    sim.set_online(SimTime::from_secs(40), friends[2]);

    sim.run_until(SimTime::from_secs(240));

    let m = sim.metrics();
    let decisions = sim.total_decisions();
    println!("status pings published: {}", m.publications);
    println!("BRASS decisions (per-event bookkeeping): {decisions}");
    println!(
        "batched deliveries to the device: {} (batching collapses {} pings)",
        m.deliveries, m.publications
    );
    assert!(
        m.deliveries.get() < m.publications.get() / 2,
        "batching must collapse updates: {} deliveries for {} pings",
        m.deliveries,
        m.publications
    );
    assert!(m.deliveries.get() >= 2, "online/offline transitions pushed");
    println!(
        "\nthe device saw friend2 appear and then expire from the online \
         set after the 30s TTL — without one message per ping."
    );
    let _ = SimDuration::from_secs(1);
    println!("\nactive_status OK");
}
