//! Failure drill: the three axioms of §4, end to end.
//!
//! 1. **Failure notification** — components that detect a failure inform
//!    their still-connected neighbours, propagating to stream endpoints.
//! 2. **Connectivity recovery** — the component downstream of the failure
//!    that is closest to it repairs each affected stream from stored state.
//! 3. **Stream state recovery** — BRASSes recover application state (here:
//!    via header rewrites carrying resumption state).
//!
//! The drill: a live audience watches while we upgrade every BRASS host in
//! a rolling wave, break the Pylon subscriber quorum, and drop devices.
//! Deliveries must continue once each failure clears.
//!
//! Run: `cargo run --example failure_drill`

use bladerunner_repro::config::SystemConfig;
use bladerunner_repro::scenario::LiveVideo;
use bladerunner_repro::sim::SystemSim;
use simkit::time::{SimDuration, SimTime};

fn main() {
    let mut sim = SystemSim::new(SystemConfig::small(), 13);
    let lv = LiveVideo::setup(&mut sim, 8, 4, SimTime::ZERO);
    lv.drive_comments(
        &mut sim,
        SimTime::from_secs(5),
        SimDuration::from_secs(400),
        0.3,
    );

    // Minute 1: rolling BRASS software upgrade (the dominant cause of
    // proxy-induced reconnects in production, Fig. 10).
    for h in 0..4usize {
        sim.schedule_brass_upgrade(
            SimTime::from_secs(60 + h as u64 * 10),
            h,
            SimDuration::from_secs(25),
        );
    }
    // Minute 3: a Pylon quorum outage (CP subscribes fail, AP delivery
    // degrades gracefully).
    for node in 0..6u64 {
        sim.schedule_pylon_outage(SimTime::from_secs(180), node, SimDuration::from_secs(20));
    }
    // Throughout: device drops on the flaky last mile.
    for (i, &v) in lv.viewers.iter().enumerate() {
        sim.schedule_device_drop(SimTime::from_secs(90 + i as u64 * 23), v);
    }

    sim.run_until(SimTime::from_secs(460));

    let m = sim.metrics();
    println!("== failure drill results ==");
    println!("deliveries:                 {}", m.deliveries);
    println!("connection drops:           {}", m.connection_drops);
    println!(
        "proxy-induced reconnects:   {}",
        sim.total_proxy_reconnects()
    );
    println!("pylon quorum failures seen: {}", m.quorum_failures);
    println!("stream resubscriptions:     {}", m.subscriptions);

    assert!(
        sim.total_proxy_reconnects() >= 8,
        "axiom 2: proxies repaired the streams of every upgraded host"
    );
    assert!(m.connection_drops.get() == 8, "all injected drops detected");
    assert!(
        m.deliveries.get() > 40,
        "best-effort delivery continued through the drill: {}",
        m.deliveries
    );

    // The drill's last word: a fresh comment after everything recovered
    // still reaches every viewer.
    let before = m.deliveries.get();
    sim.post_comment(
        SimTime::from_secs(465),
        lv.posters[0],
        lv.video,
        "we are back and fully recovered now",
    );
    sim.run_until(SimTime::from_secs(500));
    let delivered_after = sim.metrics().deliveries.get() - before;
    println!("post-drill comment reached {delivered_after} viewers (audience: 8)");
    assert!(delivered_after >= 7, "recovered audience receives updates");
    println!("\nfailure_drill OK");
}
