//! Quickstart: the smallest end-to-end Bladerunner flow.
//!
//! One viewer subscribes to a live video's comments; another user posts a
//! comment; the update flows WAS → Pylon → BRASS → proxy → POP → device.
//!
//! Run: `cargo run --example quickstart`

use bladerunner_repro::config::SystemConfig;
use bladerunner_repro::sim::SystemSim;
use simkit::time::SimTime;

fn main() {
    // Build a small system: 4 BRASS hosts, 2 proxies, 2 POPs, a sharded
    // TAO and a replicated Pylon — all driven by one deterministic seed.
    let mut sim = SystemSim::new(SystemConfig::small(), 42);

    // Fixtures: a live video and two users (each user gets a device).
    let video = sim.was_mut().create_video("total solar eclipse");
    let alice = sim.create_user_device("alice", "en");
    let bob = sim.create_user_device("bob", "en");

    // Bob opens a request-stream for the video's comments. The header
    // carries a GraphQL subscription, exactly as a real client would send.
    sim.subscribe_lvc(SimTime::ZERO, bob, video);

    // Alice posts a comment two seconds in.
    sim.post_comment(
        SimTime::from_secs(2),
        alice,
        video,
        "the corona is unbelievable right now",
    );

    // Run half a simulated minute.
    sim.run_until(SimTime::from_secs(30));

    let m = sim.metrics();
    println!("publications into Pylon: {}", m.publications);
    println!("updates delivered to devices: {}", m.deliveries);
    println!(
        "bob's device delivered {} update(s) across {} open stream(s)",
        sim.device(bob).map(|d| d.delivered()).unwrap_or(0),
        sim.device(bob).map(|d| d.open_streams()).unwrap_or(0),
    );
    let lvc = &m.per_app["lvc"];
    println!(
        "end-to-end latency: {:.1} s (posting -> rendered; includes the ~2 s ML ranking)",
        lvc.total.mean() / 1_000.0
    );
    assert_eq!(m.deliveries.get(), 1, "the comment reached bob");
    println!("\nquickstart OK");
}
