//! Messenger: reliable, in-order delivery built on a best-effort system
//! (§4).
//!
//! Bladerunner never replicates in-flight updates — instead, mailbox
//! sequence numbers let the BRASS detect drops and recover them from the
//! WAS, and header rewrites persist delivery progress so reconnects resume
//! instead of replaying. This example sends a conversation across a device
//! that keeps dropping its connection, and verifies nothing is lost,
//! duplicated, or reordered.
//!
//! Run: `cargo run --example messenger_reliable`

use bladerunner_repro::config::SystemConfig;
use bladerunner_repro::sim::SystemSim;
use simkit::time::SimTime;

fn main() {
    let mut sim = SystemSim::new(SystemConfig::small(), 11);
    let alice = sim.create_user_device("alice", "en");
    let bob = sim.create_user_device("bob", "en");
    let thread = sim.was_mut().create_thread(&[alice, bob]);

    // Bob's device opens its mailbox stream.
    sim.subscribe_mailbox(SimTime::ZERO, bob);

    // Alice sends ten messages over two minutes...
    for i in 0..10u64 {
        sim.send_message(
            SimTime::from_secs(5 + i * 12),
            alice,
            thread,
            &format!("message number {i}"),
        );
    }
    // ...while bob's flaky link drops three times mid-conversation.
    for &at in &[20u64, 60, 100] {
        sim.schedule_device_drop(SimTime::from_secs(at), bob);
    }

    sim.run_until(SimTime::from_secs(240));

    let m = sim.metrics();
    println!("connection drops: {}", m.connection_drops);
    println!("messages sent: 10, deliveries to bob: {}", m.deliveries);
    println!(
        "subscriptions (1 initial + resubscribes after drops): {}",
        m.subscriptions
    );
    assert_eq!(m.connection_drops.get(), 3);
    assert_eq!(
        m.deliveries.get(),
        10,
        "every message exactly once despite three drops"
    );
    let bob_dev = sim.device(bob).expect("bob exists");
    println!(
        "bob's stream sequence gaps observed: {} (backfills recovered them)",
        bob_dev
            .stream(burst::frame::StreamId(1))
            .map(|s| s.gaps())
            .unwrap_or(0)
    );
    println!("\nmessenger_reliable OK");
}
