//! Live video under load: per-viewer filtering, rate limiting, and the
//! hot-video strategy switch (§3.4).
//!
//! A popular video takes a burst of comments. Each viewer's BRASS stream
//! filters by language and quality, buffers into a ranked buffer, and
//! pushes at most one comment every two seconds. When the video is
//! switched to "hot" mode, the WAS pre-ranks: low-quality comments are
//! discarded before ever reaching Pylon, mid-quality ones go to per-poster
//! overflow topics, and only headline comments hit `/LVC/videoID`.
//!
//! Run: `cargo run --example live_video`

use bladerunner_repro::config::SystemConfig;
use bladerunner_repro::scenario::LiveVideo;
use bladerunner_repro::sim::SystemSim;
use simkit::time::{SimDuration, SimTime};
use was::service::HotVideoPolicy;

fn main() {
    let mut sim = SystemSim::new(SystemConfig::small(), 7);

    // A French-speaking and an English-speaking audience member: language
    // filtering is per viewer.
    let lv = LiveVideo::setup(&mut sim, 6, 10, SimTime::ZERO);
    let pierre = sim.create_user_device("pierre", "fr");
    sim.subscribe_lvc(SimTime::ZERO, pierre, lv.video);

    // Phase 1 — nominal strategy, a steady trickle.
    let n = lv.drive_comments(
        &mut sim,
        SimTime::from_secs(5),
        SimDuration::from_secs(60),
        0.2,
    );
    sim.run_until(SimTime::from_secs(70));
    let phase1_deliveries = sim.metrics().deliveries.get();
    println!("phase 1 (nominal): {n} comments posted, {phase1_deliveries} deliveries");

    // Phase 2 — the eclipse happens: a comment storm. Ops flips the video
    // to the hot strategy so the WAS discards junk before Pylon.
    sim.was_mut().set_video_hot(
        lv.video,
        Some(HotVideoPolicy {
            // Under storm load, only the upper half of the quality range
            // is worth shipping at all.
            discard_below: 0.5,
            headline_at: 0.85,
        }),
    );
    let n = lv.drive_comments(
        &mut sim,
        SimTime::from_secs(70),
        SimDuration::from_secs(60),
        5.0, // 5 comments/second
    );
    sim.run_until(SimTime::from_secs(150));

    let decisions = sim.total_decisions();
    let discards = sim.was_mut().counters().preranked_discards;
    let m = sim.metrics();
    let deliveries = m.deliveries.get();
    println!("phase 2 (hot): {n} comments posted in the storm");
    println!("WAS pre-rank discards: {discards} (never reached Pylon)");
    println!(
        "BRASS decisions: {decisions}, deliveries: {deliveries} -> {:.0}% filtered",
        (1.0 - deliveries as f64 / decisions.max(1) as f64) * 100.0
    );
    println!(
        "per-viewer rate limit held: {:.2} deliveries/viewer/minute in the storm window",
        (deliveries - phase1_deliveries) as f64 / 7.0 / 1.3
    );
    let lvc = &m.per_app["lvc"];
    println!(
        "latency through the storm: p50 {:.1} s, p95 {:.1} s (buffering caps at 10 s)",
        lvc.total.quantile(0.5) / 1_000.0,
        lvc.total.quantile(0.95) / 1_000.0
    );
    assert!(deliveries > phase1_deliveries, "the storm still delivered");
    assert!(discards > 0, "hot mode discarded junk at the WAS");
    println!("\nlive_video OK");
}
