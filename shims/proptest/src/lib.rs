//! Minimal vendored stand-in for `proptest` (offline build).
//!
//! The build environment cannot reach crates.io, so this workspace ships the
//! subset of the proptest API its tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_recursive`, strategies for integer and
//! float ranges, tuples, `Just`, `any::<T>()`, regex-class string patterns,
//! `collection::vec`, `option::of`, the `prop_oneof!` union macro, and the
//! `proptest!` test macro.
//!
//! Failing cases are NOT shrunk — the failing input is printed as generated.
//! Each test derives a fixed RNG seed from its own name, so runs are
//! deterministic and reproducible.

pub mod test_runner {
    /// Deterministic splitmix64 generator used for all value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn seeded(seed: u64) -> Self {
            TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Returns `true` with probability 1/2.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// FNV-1a hash of a test name, used as its deterministic seed.
    pub fn seed_of(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Per-block configuration: how many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::string_gen;
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `f`, regenerating up to a retry cap.
        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        /// Builds a recursive strategy: `f` maps a strategy for the inner
        /// level to a strategy for the outer level, nested `depth` times.
        /// The `_desired_size` / `_expected_branch` hints are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let branch = f(strat).boxed();
                strat = Union::new(vec![leaf.clone(), branch]).boxed();
            }
            strat
        }

        /// Type-erases the strategy behind a cheap clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A clonable type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter retry budget exhausted: {}", self.reason);
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Full-range strategy for an [`Arbitrary`] type.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Creates the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(width) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = hi.wrapping_sub(lo) as u64;
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(width + 1) as $t)
                }
            }
        )*};
    }
    range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.f64() as f32 * (self.end - self.start)
        }
    }

    /// String patterns: a `&str` is a regex-class strategy (see
    /// [`crate::string_gen`] for the supported subset).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            string_gen::generate(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for vectors with element strategy `S` and a size range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>` values.
    pub struct OptionStrategy<S>(S);

    /// Generates `None` or `Some` (50/50) of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.bool() {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod string_gen {
    //! Generator for the small regex subset used as string strategies:
    //! sequences of literal characters or `[...]` classes (with ranges and
    //! `\n` / `\t` / `\\` / `\"` / `\-` escapes), each optionally followed
    //! by a `{min,max}` repetition, plus `\PC` (any non-control character).

    use crate::test_runner::TestRng;

    enum Atom {
        /// Inclusive character ranges to choose among.
        Class(Vec<(char, char)>),
        /// Any non-control character (`\PC`).
        Printable,
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other, // \- \" \\ \. etc: the literal itself
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        // `a-z` range (a `-` just before `]` is a literal).
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = if chars[i + 2] == '\\' {
                                i += 1;
                                unescape(chars[i + 2])
                            } else {
                                chars[i + 2]
                            };
                            ranges.push((lo, hi));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    if chars[i] == 'P' || chars[i] == 'p' {
                        // Unicode property class; only \PC / \pC used here.
                        i += 2;
                        Atom::Printable
                    } else {
                        let c = unescape(chars[i]);
                        i += 1;
                        Atom::Literal(c)
                    }
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional {min,max} / {n} repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad repetition min"),
                        hi.parse().expect("bad repetition max"),
                    ),
                    None => {
                        let n = body.parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Sample pool for `\PC`: printable ASCII plus a few multibyte chars.
    const PRINTABLE_EXTRA: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '界', '🙂', '∑'];

    fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Printable => {
                if rng.below(4) == 0 {
                    PRINTABLE_EXTRA[rng.below(PRINTABLE_EXTRA.len() as u64) as usize]
                } else {
                    char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
                }
            }
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(lo, hi)| (hi as u64).saturating_sub(lo as u64) + 1)
                    .sum();
                let mut pick = rng.below(total.max(1));
                for &(lo, hi) in ranges {
                    let span = (hi as u64) - (lo as u64) + 1;
                    if pick < span {
                        return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                    }
                    pick -= span;
                }
                ranges[0].0
            }
        }
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = if piece.max > piece.min {
                piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize
            } else {
                piece.min
            };
            for _ in 0..n {
                out.push(gen_char(&piece.atom, rng));
            }
        }
        out
    }
}

/// Runs one property over `cases` generated inputs, printing the failing
/// input before propagating a panic.
pub fn run_cases<T: std::fmt::Debug>(
    cases: u32,
    rng: &mut test_runner::TestRng,
    strat: &impl strategy::Strategy<Value = T>,
    mut body: impl FnMut(T),
) {
    for case in 0..cases {
        let value = strat.generate(rng);
        let repr = format!("{value:?}");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
        if let Err(payload) = result {
            eprintln!("proptest case {case} failed for input: {repr}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Declares property tests. Mirrors proptest's macro:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, ys in proptest::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::seeded(
                $crate::test_runner::seed_of(concat!(module_path!(), "::", stringify!($name))),
            );
            let strat = ( $($s,)+ );
            $crate::run_cases(config.cases, &mut rng, &strat, |($($p,)+)| $body);
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seeded(1);
        for _ in 0..1_000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = (-10i64..10).generate(&mut rng);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::seeded(2);
        for _ in 0..500 {
            let s = "[a-z]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let t = "[a-zA-Z_][a-zA-Z0-9_]{0,8}".generate(&mut rng);
            assert!(!t.is_empty() && t.len() <= 9, "{t:?}");
            let first = t.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_', "{t:?}");

            let p = "[ -~]{0,10}".generate(&mut rng);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)), "{p:?}");

            let e = "[a-zA-Z0-9 _\\-\\n\"\\\\]{0,12}".generate(&mut rng);
            assert!(
                e.chars().all(|c| c.is_ascii_alphanumeric()
                    || matches!(c, ' ' | '_' | '-' | '\n' | '"' | '\\')),
                "{e:?}"
            );
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = prop_oneof![(0u64..5).prop_map(Tree::Leaf), Just(Tree::Leaf(99)),]
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::seeded(3);
        for _ in 0..500 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_runs(x in 0u64..100, mut v in crate::collection::vec(any::<u8>(), 0..8)) {
            v.sort_unstable();
            prop_assert!(x < 100);
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn option_of_covers_both(o in crate::option::of(0u64..4)) {
            if let Some(v) = o {
                prop_assert!(v < 4);
            }
        }
    }
}
