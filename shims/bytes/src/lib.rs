//! Minimal vendored stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the small subset of the `bytes` API it actually uses:
//! [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] traits. Semantics
//! match the real crate for this subset; zero-copy sharing is replaced by
//! plain owned vectors, which is fine for a simulator.

use std::ops::{Deref, DerefMut};

/// Read-side cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Returns `true` while unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Copies the next `len` bytes out as an owned [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics if `len > self.remaining()`.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write-side interface for growable byte buffers.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copied; this shim has no zero-copy path).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes {
            data: s.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns `true` if no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", &self[..])
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` bytes, keeping the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", &self.data)
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data
    }

    fn advance(&mut self, cnt: usize) {
        self.data.drain(..cnt);
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_freeze() {
        let mut m = BytesMut::new();
        m.put_u8(1);
        m.put_slice(&[2, 3, 4]);
        assert_eq!(m.len(), 4);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.copy_to_bytes(2).to_vec(), vec![2, 3]);
        assert_eq!(b.remaining(), 1);
    }

    #[test]
    fn split_and_advance() {
        let mut m = BytesMut::new();
        m.put_slice(&[1, 2, 3, 4, 5]);
        m.advance(1);
        let head = m.split_to(2);
        assert_eq!(&head[..], &[2, 3]);
        assert_eq!(&m[..], &[4, 5]);
    }

    #[test]
    fn slice_buf_impl() {
        let mut s: &[u8] = &[7, 8, 9];
        assert_eq!(s.get_u8(), 7);
        assert_eq!(s.remaining(), 2);
        s.advance(2);
        assert!(!s.has_remaining());
    }
}
