//! Minimal vendored stand-in for `criterion` (offline build).
//!
//! Implements just enough of the API for the workspace's `harness = false`
//! benches to compile and run: each `bench_function` times a fixed number of
//! iterations and prints a mean per-iteration figure. No statistics, warmup
//! tuning, or HTML reports.

use std::hint;
use std::time::Instant;

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Passed to each registered benchmark function.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 1_000 }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `f` over a fixed iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to pay lazy-init costs.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            elapsed_ns: 0.0,
        };
        f(&mut b);
        println!("{name:<48} {:>12.1} ns/iter", b.elapsed_ns);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
