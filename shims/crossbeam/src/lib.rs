//! Minimal vendored stand-in for `crossbeam` (offline build).
//!
//! Only the `channel` module subset the workspace uses is provided,
//! implemented over `std::sync::mpsc`. Bounded semantics match crossbeam:
//! `send` blocks while the channel is full and errors once the receiver is
//! dropped.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError};

    /// Sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or errors if disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for a message up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Blocks for a message until the channel disconnects.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_timeout() {
            let (tx, rx) = bounded(4);
            tx.send(42).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(42));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
