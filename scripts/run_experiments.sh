#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation.
# Usage: scripts/run_experiments.sh [output-file]
set -euo pipefail
out="${1:-experiments_output.txt}"
cargo build --release -p bench
{
  for b in table1 table2 table3 fig6 fig7 fig8 fig9 fig10 headline; do
    echo "================== $b =================="
    cargo run --release -q -p bench --bin "$b"
    echo
  done
} | tee "$out"
echo "Wrote $out"
