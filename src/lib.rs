//! Workspace facade crate.
//!
//! Re-exports the Bladerunner reproduction API so that the root-level
//! integration tests (`tests/`) and runnable examples (`examples/`) can use
//! a single import. See the `bladerunner` crate for the system itself and
//! `DESIGN.md` for the full inventory.

pub use bladerunner::*;
